// Package sparse implements the compressed-sparse-row matrices backing the
// Markov-chain generators in this repository. The state spaces of the
// SC-Share performance models reach millions of states with a handful of
// transitions each, so dense storage is not an option and the Go ecosystem
// offers no stdlib alternative.
package sparse

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// ErrShape is returned when matrix and vector dimensions do not agree.
var ErrShape = errors.New("sparse: dimension mismatch")

// Builder accumulates coordinate-form entries; duplicate coordinates are
// summed when the CSR matrix is built, which makes transition-rate assembly
// ("add rate r from state a to state b") natural. A Builder owns sorting
// scratch that is reused across Build calls, so a long-lived Builder cycled
// through Reset assembles chains without reallocating.
type Builder struct {
	rows, cols int
	entries    []entry
	// Build scratch, retained across calls so repeated assembly of
	// similarly sized chains stops allocating.
	sorted []entry
	counts []int
	next   []int
}

type entry struct {
	r, c int
	v    float64
}

// NewBuilder returns a builder for a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Reset discards all accumulated entries and re-dimensions the builder to
// rows x cols, retaining the entry and scratch storage so the next assembly
// reuses it. It is the allocation-free alternative to NewBuilder for level
// rebuilds.
func (b *Builder) Reset(rows, cols int) {
	b.rows, b.cols = rows, cols
	b.entries = b.entries[:0]
}

// Add accumulates v at (r, c). Out-of-range coordinates panic: they are
// programming errors in state-space enumeration, not runtime conditions.
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d matrix", r, c, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.entries = append(b.entries, entry{r: r, c: c, v: v})
}

// NNZ returns the number of accumulated (possibly duplicate) entries.
func (b *Builder) NNZ() int { return len(b.entries) }

// Build produces a fresh CSR matrix, summing duplicates and dropping exact
// zeros. The builder can be reused afterwards; it is left unchanged.
func (b *Builder) Build() *CSR {
	return b.BuildInto(nil)
}

// BuildInto assembles the CSR matrix into m, reusing m's index and value
// storage when capacities allow (m may be nil or zero-valued, in which case
// the storage is allocated). Entries are ordered with a counting sort by row
// followed by per-row column sorts, which avoids reflection-based sorting on
// the hot path of chain assembly. The returned matrix is m (or a fresh one
// when m is nil); any previous contents are overwritten.
func (b *Builder) BuildInto(m *CSR) *CSR {
	if m == nil {
		m = &CSR{}
	}
	b.counts = growInts(b.counts, b.rows+1)
	counts := b.counts
	for i := range counts {
		counts[i] = 0
	}
	for _, e := range b.entries {
		counts[e.r+1]++
	}
	for r := 0; r < b.rows; r++ {
		counts[r+1] += counts[r]
	}
	if cap(b.sorted) < len(b.entries) {
		b.sorted = make([]entry, len(b.entries))
	}
	es := b.sorted[:len(b.entries)]
	b.next = growInts(b.next, b.rows)
	next := b.next
	for i := range next {
		next[i] = 0
	}
	for _, e := range b.entries {
		pos := counts[e.r] + next[e.r]
		es[pos] = e
		next[e.r]++
	}
	for r := 0; r < b.rows; r++ {
		row := es[counts[r]:counts[r+1]]
		slices.SortFunc(row, func(a, b entry) int { return a.c - b.c })
	}
	m.Rows, m.Cols = b.rows, b.cols
	m.RowPtr = growInts(m.RowPtr, b.rows+1)
	for i := range m.RowPtr {
		m.RowPtr[i] = 0
	}
	m.ColIdx = m.ColIdx[:0]
	m.Val = m.Val[:0]
	for i := 0; i < len(es); {
		j := i
		v := 0.0
		for ; j < len(es) && es[j].r == es[i].r && es[j].c == es[i].c; j++ {
			v += es[j].v
		}
		if v != 0 {
			m.ColIdx = append(m.ColIdx, es[i].c)
			m.Val = append(m.Val, v)
			m.RowPtr[es[i].r+1]++
		}
		i = j
	}
	for r := 0; r < b.rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// growInts returns s resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns the value at (r, c) with a binary search over the row; it is
// intended for tests and diagnostics, not hot loops.
func (m *CSR) At(r, c int) float64 {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		return 0
	}
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	i := sort.SearchInts(m.ColIdx[lo:hi], c) + lo
	if i < hi && m.ColIdx[i] == c {
		return m.Val[i]
	}
	return 0
}

// MulVecTo computes dst = m * x into the caller-provided buffer without
// allocating. dst and x must not alias. It is one of the two multiply
// kernels this package exposes; there is deliberately no allocating
// convenience variant.
func (m *CSR) MulVecTo(dst, x []float64) error {
	if len(x) != m.Cols || len(dst) != m.Rows {
		return ErrShape
	}
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			s += m.Val[i] * x[m.ColIdx[i]]
		}
		dst[r] = s
	}
	return nil
}

// MulVecTTo computes dst = x * m (that is, dst = mᵀ x), the operation used
// to push probability vectors through a transition matrix, into the
// caller-provided buffer without allocating. dst and x must not alias. Like
// MulVecTo it is a dst-first kernel with no allocating variant.
func (m *CSR) MulVecTTo(dst, x []float64) error {
	if len(x) != m.Rows || len(dst) != m.Cols {
		return ErrShape
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.Rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			dst[m.ColIdx[i]] += m.Val[i] * xr
		}
	}
	return nil
}

// RowSums returns the vector of row sums.
func (m *CSR) RowSums() []float64 {
	return m.RowSumsInto(nil)
}

// RowSumsInto computes the vector of row sums into dst, reusing its storage
// when the capacity allows (dst may be nil).
func (m *CSR) RowSumsInto(dst []float64) []float64 {
	if cap(dst) < m.Rows {
		dst = make([]float64, m.Rows)
	}
	dst = dst[:m.Rows]
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			s += m.Val[i]
		}
		dst[r] = s
	}
	return dst
}

// Scale multiplies every stored value by f in place.
func (m *CSR) Scale(f float64) {
	for i := range m.Val {
		m.Val[i] *= f
	}
}

// Transpose returns mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	return m.TransposeInto(nil)
}

// TransposeInto computes mᵀ into dst, reusing dst's storage when capacities
// allow (dst may be nil). It runs a direct counting transpose — no builder,
// no sort — since CSR rows are already column-ordered.
func (m *CSR) TransposeInto(dst *CSR) *CSR {
	if dst == nil {
		dst = &CSR{}
	}
	nnz := len(m.Val)
	dst.Rows, dst.Cols = m.Cols, m.Rows
	dst.RowPtr = growInts(dst.RowPtr, m.Cols+1)
	for i := range dst.RowPtr {
		dst.RowPtr[i] = 0
	}
	dst.ColIdx = growInts(dst.ColIdx, nnz)
	if cap(dst.Val) < nnz {
		dst.Val = make([]float64, nnz)
	}
	dst.Val = dst.Val[:nnz]
	for i := 0; i < nnz; i++ {
		dst.RowPtr[m.ColIdx[i]+1]++
	}
	for c := 0; c < m.Cols; c++ {
		dst.RowPtr[c+1] += dst.RowPtr[c]
	}
	// Walking source rows in order fills each destination row with
	// ascending column indices, preserving the CSR ordering invariant.
	// RowPtr doubles as the fill cursor (the classic shift trick), so the
	// transpose needs no scratch of its own.
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			c := m.ColIdx[i]
			pos := dst.RowPtr[c]
			dst.ColIdx[pos] = r
			dst.Val[pos] = m.Val[i]
			dst.RowPtr[c]++
		}
	}
	for c := m.Cols; c > 0; c-- {
		dst.RowPtr[c] = dst.RowPtr[c-1]
	}
	dst.RowPtr[0] = 0
	return dst
}

// Dense expands the matrix to row-major dense form; for tests only.
func (m *CSR) Dense() [][]float64 {
	out := make([][]float64, m.Rows)
	for r := range out {
		out[r] = make([]float64, m.Cols)
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			out[r][m.ColIdx[i]] = m.Val[i]
		}
	}
	return out
}

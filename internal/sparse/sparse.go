// Package sparse implements the compressed-sparse-row matrices backing the
// Markov-chain generators in this repository. The state spaces of the
// SC-Share performance models reach millions of states with a handful of
// transitions each, so dense storage is not an option and the Go ecosystem
// offers no stdlib alternative.
package sparse

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// ErrShape is returned when matrix and vector dimensions do not agree.
var ErrShape = errors.New("sparse: dimension mismatch")

// Builder accumulates coordinate-form entries; duplicate coordinates are
// summed when the CSR matrix is built, which makes transition-rate assembly
// ("add rate r from state a to state b") natural.
type Builder struct {
	rows, cols int
	entries    []entry
}

type entry struct {
	r, c int
	v    float64
}

// NewBuilder returns a builder for a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add accumulates v at (r, c). Out-of-range coordinates panic: they are
// programming errors in state-space enumeration, not runtime conditions.
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d matrix", r, c, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.entries = append(b.entries, entry{r: r, c: c, v: v})
}

// NNZ returns the number of accumulated (possibly duplicate) entries.
func (b *Builder) NNZ() int { return len(b.entries) }

// Build produces the CSR matrix, summing duplicates and dropping exact
// zeros. The builder can be reused afterwards; it is left unchanged.
// Entries are ordered with a counting sort by row followed by per-row
// column sorts, which avoids reflection-based sorting on the hot path of
// chain assembly.
func (b *Builder) Build() *CSR {
	counts := make([]int, b.rows+1)
	for _, e := range b.entries {
		counts[e.r+1]++
	}
	for r := 0; r < b.rows; r++ {
		counts[r+1] += counts[r]
	}
	es := make([]entry, len(b.entries))
	next := make([]int, b.rows)
	for _, e := range b.entries {
		pos := counts[e.r] + next[e.r]
		es[pos] = e
		next[e.r]++
	}
	for r := 0; r < b.rows; r++ {
		row := es[counts[r]:counts[r+1]]
		slices.SortFunc(row, func(a, b entry) int { return a.c - b.c })
	}
	m := &CSR{
		Rows:   b.rows,
		Cols:   b.cols,
		RowPtr: make([]int, b.rows+1),
	}
	for i := 0; i < len(es); {
		j := i
		v := 0.0
		for ; j < len(es) && es[j].r == es[i].r && es[j].c == es[i].c; j++ {
			v += es[j].v
		}
		if v != 0 {
			m.ColIdx = append(m.ColIdx, es[i].c)
			m.Val = append(m.Val, v)
			m.RowPtr[es[i].r+1]++
		}
		i = j
	}
	for r := 0; r < b.rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns the value at (r, c) with a binary search over the row; it is
// intended for tests and diagnostics, not hot loops.
func (m *CSR) At(r, c int) float64 {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		return 0
	}
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	i := sort.SearchInts(m.ColIdx[lo:hi], c) + lo
	if i < hi && m.ColIdx[i] == c {
		return m.Val[i]
	}
	return 0
}

// MulVecTo computes dst = m * x into the caller-provided buffer without
// allocating. dst and x must not alias.
func (m *CSR) MulVecTo(dst, x []float64) error {
	if len(x) != m.Cols || len(dst) != m.Rows {
		return ErrShape
	}
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			s += m.Val[i] * x[m.ColIdx[i]]
		}
		dst[r] = s
	}
	return nil
}

// MulVec computes dst = m * x. It is a thin wrapper around MulVecTo, kept
// for callers predating the allocation-free naming.
func (m *CSR) MulVec(dst, x []float64) error {
	return m.MulVecTo(dst, x)
}

// MulVecTTo computes dst = x * m (that is, dst = mᵀ x), the operation used
// to push probability vectors through a transition matrix, into the
// caller-provided buffer without allocating. dst and x must not alias.
func (m *CSR) MulVecTTo(dst, x []float64) error {
	if len(x) != m.Rows || len(dst) != m.Cols {
		return ErrShape
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.Rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			dst[m.ColIdx[i]] += m.Val[i] * xr
		}
	}
	return nil
}

// MulVecT is a thin wrapper around MulVecTTo, kept for callers predating
// the allocation-free naming.
func (m *CSR) MulVecT(dst, x []float64) error {
	return m.MulVecTTo(dst, x)
}

// RowSums returns the vector of row sums.
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			s += m.Val[i]
		}
		out[r] = s
	}
	return out
}

// Scale multiplies every stored value by f in place.
func (m *CSR) Scale(f float64) {
	for i := range m.Val {
		m.Val[i] *= f
	}
}

// Transpose returns mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	b := NewBuilder(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			b.Add(m.ColIdx[i], r, m.Val[i])
		}
	}
	return b.Build()
}

// Dense expands the matrix to row-major dense form; for tests only.
func (m *CSR) Dense() [][]float64 {
	out := make([][]float64, m.Rows)
	for r := range out {
		out[r] = make([]float64, m.Cols)
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			out[r][m.ColIdx[i]] = m.Val[i]
		}
	}
	return out
}

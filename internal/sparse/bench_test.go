package sparse

import (
	"math/rand"
	"testing"
)

func benchMatrix(b *testing.B, n, perRow int) (*CSR, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bl := NewBuilder(n, n)
	for r := 0; r < n; r++ {
		for k := 0; k < perRow; k++ {
			bl.Add(r, rng.Intn(n), rng.Float64())
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	return bl.Build(), x
}

func BenchmarkMulVecTTo(b *testing.B) {
	m, x := benchMatrix(b, 20000, 8)
	dst := make([]float64, m.Cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MulVecTTo(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulVecTo(b *testing.B) {
	m, x := benchMatrix(b, 20000, 8)
	dst := make([]float64, m.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MulVecTo(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n, nnz = 20000, 160000
	rows := make([]int, nnz)
	cols := make([]int, nnz)
	for i := range rows {
		rows[i], cols[i] = rng.Intn(n), rng.Intn(n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(n, n)
		for k := range rows {
			bl.Add(rows[k], cols[k], 1)
		}
		if m := bl.Build(); m.NNZ() == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkBuildReset measures the arena path: one builder and one CSR
// cycled through Reset/BuildInto, the shape level rebuilds use.
func BenchmarkBuildReset(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n, nnz = 20000, 160000
	rows := make([]int, nnz)
	cols := make([]int, nnz)
	for i := range rows {
		rows[i], cols[i] = rng.Intn(n), rng.Intn(n)
	}
	bl := NewBuilder(n, n)
	var m CSR
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Reset(n, n)
		for k := range rows {
			bl.Add(rows[k], cols[k], 1)
		}
		if bl.BuildInto(&m); m.NNZ() == 0 {
			b.Fatal("empty")
		}
	}
}

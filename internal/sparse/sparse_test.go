package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *CSR {
	t.Helper()
	b := NewBuilder(3, 4)
	b.Add(0, 0, 1)
	b.Add(0, 3, 2)
	b.Add(1, 1, 3)
	b.Add(2, 0, 4)
	b.Add(2, 2, 5)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	m := buildSmall(t)
	if m.NNZ() != 5 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	want := [][]float64{{1, 0, 0, 2}, {0, 3, 0, 0}, {4, 0, 5, 0}}
	got := m.Dense()
	for r := range want {
		for c := range want[r] {
			if got[r][c] != want[r][c] {
				t.Errorf("(%d,%d) = %v, want %v", r, c, got[r][c], want[r][c])
			}
			if m.At(r, c) != want[r][c] {
				t.Errorf("At(%d,%d) = %v, want %v", r, c, m.At(r, c), want[r][c])
			}
		}
	}
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1.5)
	b.Add(0, 1, 2.5)
	b.Add(1, 0, 3)
	b.Add(1, 0, -3) // cancels to zero and must be dropped
	m := b.Build()
	if m.At(0, 1) != 4 {
		t.Errorf("duplicate sum = %v", m.At(0, 1))
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1 (zero entry dropped)", m.NNZ())
	}
}

func TestBuilderIgnoresZero(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 0)
	if b.NNZ() != 0 {
		t.Error("zero entry stored")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestMulVecTo(t *testing.T) {
	m := buildSmall(t)
	x := []float64{1, 2, 3, 4}
	dst := make([]float64, 3)
	if err := m.MulVecTo(dst, x); err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 6, 19}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	if err := m.MulVecTo(dst, x[:2]); err != ErrShape {
		t.Errorf("shape error not reported: %v", err)
	}
}

func TestMulVecTTo(t *testing.T) {
	m := buildSmall(t)
	x := []float64{1, 2, 3}
	dst := make([]float64, 4)
	if err := m.MulVecTTo(dst, x); err != nil {
		t.Fatal(err)
	}
	want := []float64{13, 6, 15, 2}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	if err := m.MulVecTTo(dst[:1], x); err != ErrShape {
		t.Errorf("shape error not reported: %v", err)
	}
}

func TestRowSumsScale(t *testing.T) {
	m := buildSmall(t)
	rs := m.RowSums()
	want := []float64{3, 3, 9}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("row sum %d = %v", i, rs[i])
		}
	}
	m.Scale(2)
	if m.At(2, 2) != 10 {
		t.Errorf("Scale: got %v", m.At(2, 2))
	}
}

func TestTranspose(t *testing.T) {
	m := buildSmall(t)
	mt := m.Transpose()
	if mt.Rows != m.Cols || mt.Cols != m.Rows {
		t.Fatalf("transpose shape %dx%d", mt.Rows, mt.Cols)
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if m.At(r, c) != mt.At(c, r) {
				t.Errorf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
}

// TestMulVecTMatchesTransposeMulVec checks x*M == Mᵀx on random matrices.
func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		b := NewBuilder(rows, cols)
		for k := 0; k < rng.Intn(20); k++ {
			b.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		m := b.Build()
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, cols)
		if err := m.MulVecTTo(got, x); err != nil {
			t.Fatal(err)
		}
		want := make([]float64, cols)
		if err := m.Transpose().MulVecTo(want, x); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestAtOutOfRange(t *testing.T) {
	m := buildSmall(t)
	if m.At(-1, 0) != 0 || m.At(0, 99) != 0 {
		t.Error("out-of-range At should be 0")
	}
}

// Property: Build is independent of insertion order.
func TestBuildOrderIndependentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5
		type e struct {
			r, c int
			v    float64
		}
		var es []e
		for k := 0; k < 15; k++ {
			es = append(es, e{rng.Intn(n), rng.Intn(n), float64(rng.Intn(9) + 1)})
		}
		b1 := NewBuilder(n, n)
		for _, x := range es {
			b1.Add(x.r, x.c, x.v)
		}
		b2 := NewBuilder(n, n)
		perm := rng.Perm(len(es))
		for _, i := range perm {
			b2.Add(es[i].r, es[i].c, es[i].v)
		}
		m1, m2 := b1.Build(), b2.Build()
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if math.Abs(m1.At(r, c)-m2.At(r, c)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBuilderReset pins the arena contract: a Reset builder accepts a new
// shape, produces the same matrix a fresh builder would, and a BuildInto on
// a previously built CSR reuses its storage without allocating.
func TestBuilderReset(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(0, 0, 1)
	b.Add(0, 3, 2)
	b.Add(1, 1, 3)
	b.Add(2, 0, 4)
	b.Add(2, 2, 5)
	first := b.Build()

	b.Reset(2, 2)
	if b.NNZ() != 0 {
		t.Fatalf("NNZ after Reset = %d, want 0", b.NNZ())
	}
	b.Add(0, 1, 7)
	b.Add(1, 0, 8)
	small := b.Build()
	if small.Rows != 2 || small.Cols != 2 || small.At(0, 1) != 7 || small.At(1, 0) != 8 {
		t.Fatalf("post-Reset build wrong: %v", small.Dense())
	}
	// The first build must be unaffected by later Reset/Build cycles.
	if first.At(2, 2) != 5 || first.NNZ() != 5 {
		t.Fatal("Reset corrupted a previously built matrix")
	}

	// Rebuilding the original shape into the existing CSR must not allocate
	// once capacities are in place.
	b.Reset(3, 4)
	b.Add(0, 0, 1)
	b.Add(0, 3, 2)
	b.Add(1, 1, 3)
	b.Add(2, 0, 4)
	b.Add(2, 2, 5)
	reused := b.BuildInto(small)
	if reused != small {
		t.Fatal("BuildInto did not return its destination")
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if reused.At(r, c) != first.At(r, c) {
				t.Fatalf("BuildInto(%d,%d) = %v, want %v", r, c, reused.At(r, c), first.At(r, c))
			}
		}
	}
	if n := testing.AllocsPerRun(20, func() {
		b.Reset(3, 4)
		b.Add(0, 0, 1)
		b.Add(0, 3, 2)
		b.Add(1, 1, 3)
		b.Add(2, 0, 4)
		b.Add(2, 2, 5)
		b.BuildInto(reused)
	}); n != 0 {
		t.Errorf("Reset+BuildInto cycle allocates %v per run, want 0", n)
	}
}

func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var dst CSR
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		b := NewBuilder(rows, cols)
		for k := 0; k < rng.Intn(25); k++ {
			b.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		m := b.Build()
		mt := m.TransposeInto(&dst)
		if mt != &dst {
			t.Fatal("TransposeInto did not return its destination")
		}
		if mt.Rows != m.Cols || mt.Cols != m.Rows {
			t.Fatalf("transpose shape %dx%d", mt.Rows, mt.Cols)
		}
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				if m.At(r, c) != mt.At(c, r) {
					t.Fatalf("trial %d: transpose mismatch at (%d,%d)", trial, r, c)
				}
			}
		}
		// The CSR column-ordering invariant must survive the counting
		// transpose (At depends on it).
		for r := 0; r < mt.Rows; r++ {
			for i := mt.RowPtr[r] + 1; i < mt.RowPtr[r+1]; i++ {
				if mt.ColIdx[i-1] >= mt.ColIdx[i] {
					t.Fatalf("trial %d: row %d columns not ascending", trial, r)
				}
			}
		}
	}
}

func TestRowSumsInto(t *testing.T) {
	m := buildSmall(t)
	buf := make([]float64, 3)
	got := m.RowSumsInto(buf)
	if &got[0] != &buf[0] {
		t.Fatal("RowSumsInto did not reuse its buffer")
	}
	want := []float64{3, 3, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row sum %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulVecToShape(t *testing.T) {
	m := buildSmall(t)
	if err := m.MulVecTo(make([]float64, m.Rows), make([]float64, m.Cols+1)); err != ErrShape {
		t.Errorf("bad x length: err = %v, want ErrShape", err)
	}
	if err := m.MulVecTTo(make([]float64, m.Cols+1), make([]float64, m.Rows)); err != ErrShape {
		t.Errorf("bad dst length: err = %v, want ErrShape", err)
	}
}

// The matvec kernels sit inside every steady-state iteration; they must not
// allocate per call.
func TestMulVecToAllocFree(t *testing.T) {
	b := NewBuilder(64, 64)
	for r := 0; r < 64; r++ {
		b.Add(r, (r+1)%64, 1.5)
		b.Add(r, (r+17)%64, 0.5)
	}
	m := b.Build()
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i)
	}
	dst := make([]float64, 64)
	if n := testing.AllocsPerRun(100, func() {
		if err := m.MulVecTo(dst, x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("MulVecTo allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := m.MulVecTTo(dst, x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("MulVecTTo allocates %v per run, want 0", n)
	}
}

package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *CSR {
	t.Helper()
	b := NewBuilder(3, 4)
	b.Add(0, 0, 1)
	b.Add(0, 3, 2)
	b.Add(1, 1, 3)
	b.Add(2, 0, 4)
	b.Add(2, 2, 5)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	m := buildSmall(t)
	if m.NNZ() != 5 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	want := [][]float64{{1, 0, 0, 2}, {0, 3, 0, 0}, {4, 0, 5, 0}}
	got := m.Dense()
	for r := range want {
		for c := range want[r] {
			if got[r][c] != want[r][c] {
				t.Errorf("(%d,%d) = %v, want %v", r, c, got[r][c], want[r][c])
			}
			if m.At(r, c) != want[r][c] {
				t.Errorf("At(%d,%d) = %v, want %v", r, c, m.At(r, c), want[r][c])
			}
		}
	}
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1.5)
	b.Add(0, 1, 2.5)
	b.Add(1, 0, 3)
	b.Add(1, 0, -3) // cancels to zero and must be dropped
	m := b.Build()
	if m.At(0, 1) != 4 {
		t.Errorf("duplicate sum = %v", m.At(0, 1))
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1 (zero entry dropped)", m.NNZ())
	}
}

func TestBuilderIgnoresZero(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 0)
	if b.NNZ() != 0 {
		t.Error("zero entry stored")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestMulVec(t *testing.T) {
	m := buildSmall(t)
	x := []float64{1, 2, 3, 4}
	dst := make([]float64, 3)
	if err := m.MulVec(dst, x); err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 6, 19}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	if err := m.MulVec(dst, x[:2]); err != ErrShape {
		t.Errorf("shape error not reported: %v", err)
	}
}

func TestMulVecT(t *testing.T) {
	m := buildSmall(t)
	x := []float64{1, 2, 3}
	dst := make([]float64, 4)
	if err := m.MulVecT(dst, x); err != nil {
		t.Fatal(err)
	}
	want := []float64{13, 6, 15, 2}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	if err := m.MulVecT(dst[:1], x); err != ErrShape {
		t.Errorf("shape error not reported: %v", err)
	}
}

func TestRowSumsScale(t *testing.T) {
	m := buildSmall(t)
	rs := m.RowSums()
	want := []float64{3, 3, 9}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("row sum %d = %v", i, rs[i])
		}
	}
	m.Scale(2)
	if m.At(2, 2) != 10 {
		t.Errorf("Scale: got %v", m.At(2, 2))
	}
}

func TestTranspose(t *testing.T) {
	m := buildSmall(t)
	mt := m.Transpose()
	if mt.Rows != m.Cols || mt.Cols != m.Rows {
		t.Fatalf("transpose shape %dx%d", mt.Rows, mt.Cols)
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if m.At(r, c) != mt.At(c, r) {
				t.Errorf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
}

// TestMulVecTMatchesTransposeMulVec checks x*M == Mᵀx on random matrices.
func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		b := NewBuilder(rows, cols)
		for k := 0; k < rng.Intn(20); k++ {
			b.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		m := b.Build()
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, cols)
		if err := m.MulVecT(got, x); err != nil {
			t.Fatal(err)
		}
		want := make([]float64, cols)
		if err := m.Transpose().MulVec(want, x); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestAtOutOfRange(t *testing.T) {
	m := buildSmall(t)
	if m.At(-1, 0) != 0 || m.At(0, 99) != 0 {
		t.Error("out-of-range At should be 0")
	}
}

// Property: Build is independent of insertion order.
func TestBuildOrderIndependentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5
		type e struct {
			r, c int
			v    float64
		}
		var es []e
		for k := 0; k < 15; k++ {
			es = append(es, e{rng.Intn(n), rng.Intn(n), float64(rng.Intn(9) + 1)})
		}
		b1 := NewBuilder(n, n)
		for _, x := range es {
			b1.Add(x.r, x.c, x.v)
		}
		b2 := NewBuilder(n, n)
		perm := rng.Perm(len(es))
		for _, i := range perm {
			b2.Add(es[i].r, es[i].c, es[i].v)
		}
		m1, m2 := b1.Build(), b2.Build()
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if math.Abs(m1.At(r, c)-m2.At(r, c)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulVecToMatchesMulVec(t *testing.T) {
	m := buildSmall(t)
	x := []float64{1, 2, 3, 4}
	a := make([]float64, m.Rows)
	b := make([]float64, m.Rows)
	if err := m.MulVecTo(a, x); err != nil {
		t.Fatal(err)
	}
	if err := m.MulVec(b, x); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d: MulVecTo = %v, MulVec = %v", i, a[i], b[i])
		}
	}
	want := []float64{1*1 + 2*4, 3 * 2, 4*1 + 5*3}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("row %d = %v, want %v", i, a[i], want[i])
		}
	}
}

func TestMulVecTToMatchesMulVecT(t *testing.T) {
	m := buildSmall(t)
	x := []float64{1, 2, 3}
	a := make([]float64, m.Cols)
	b := make([]float64, m.Cols)
	if err := m.MulVecTTo(a, x); err != nil {
		t.Fatal(err)
	}
	if err := m.MulVecT(b, x); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("col %d: MulVecTTo = %v, MulVecT = %v", i, a[i], b[i])
		}
	}
}

func TestMulVecToShape(t *testing.T) {
	m := buildSmall(t)
	if err := m.MulVecTo(make([]float64, m.Rows), make([]float64, m.Cols+1)); err != ErrShape {
		t.Errorf("bad x length: err = %v, want ErrShape", err)
	}
	if err := m.MulVecTTo(make([]float64, m.Cols+1), make([]float64, m.Rows)); err != ErrShape {
		t.Errorf("bad dst length: err = %v, want ErrShape", err)
	}
}

// The matvec kernels sit inside every steady-state iteration; they must not
// allocate per call.
func TestMulVecToAllocFree(t *testing.T) {
	b := NewBuilder(64, 64)
	for r := 0; r < 64; r++ {
		b.Add(r, (r+1)%64, 1.5)
		b.Add(r, (r+17)%64, 0.5)
	}
	m := b.Build()
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i)
	}
	dst := make([]float64, 64)
	if n := testing.AllocsPerRun(100, func() {
		if err := m.MulVecTo(dst, x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("MulVecTo allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := m.MulVecTTo(dst, x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("MulVecTTo allocates %v per run, want 0", n)
	}
}
